package omega

import (
	"context"
	"errors"
	"os"
	"testing"

	"omega/internal/fault"
	"omega/internal/l4all"
)

// Regression tests for the pool-poisoning fix: an execution that ends in an
// error or panic must discard its EvalPool bundle instead of recycling it,
// and the pool must keep emitting byte-identical sequences afterwards. These
// tests drive the public API with the failpoint registry armed, so they pin
// the whole path: injected fault → typed sticky error → bundle discarded →
// next pooled execution unaffected.

// withFaults arms the failpoint registry for one test and guarantees it is
// disarmed afterwards (the registry is process-global, so tests touching it
// must not run in parallel).
func withFaults(t *testing.T, spec string, seed int64) {
	t.Helper()
	if err := fault.Configure(spec, seed); err != nil {
		t.Fatalf("fault.Configure(%q): %v", spec, err)
	}
	t.Cleanup(fault.Reset)
}

// collectAll drains rows fully, returning the rows gathered and the terminal
// error (nil on clean exhaustion).
func collectAll(rows *Rows, limit int) ([]Row, error) {
	got, err := rows.Collect(limit)
	rows.Close()
	return got, err
}

// assertSameRows requires got and want to agree row-for-row.
func assertSameRows(t *testing.T, label string, got, want []Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Dist != want[i].Dist || got[i].Labels[0] != want[i].Labels[0] {
			t.Fatalf("%s: row %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestPoolDiscardsBundleOnInjectedError arms the core.row failpoint so a
// pooled execution fails mid-stream, then requires (a) the typed injected
// error surfaces through the Rows sticky-error contract, (b) the pool counts
// the bundle as poisoned rather than recycling it, and (c) a subsequent
// pooled execution is byte-identical to a fresh one — the poisoned bundle
// never reaches another request.
func TestPoolDiscardsBundleOnInjectedError(t *testing.T) {
	g, ont := datasets().L4All(l4all.L1)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"plain", Options{}},
		{"distance-aware", Options{DistanceAware: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng := NewEngine(g, ont).WithOptions(tc.opts)
			pq, err := eng.PrepareText(spillQuery)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := pq.Exec(context.Background(), ExecOptions{})
			if err != nil {
				t.Fatal(err)
			}
			want, err := collectAll(fresh, 200)
			if err != nil {
				t.Fatalf("fresh Collect: %v", err)
			}

			pool := NewEvalPool(4)
			// Warm the pool with one clean pooled run so the faulty run below
			// draws a recycled bundle, not a fresh allocation.
			warm, err := pq.Exec(context.Background(), ExecOptions{Pool: pool})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := collectAll(warm, 200); err != nil {
				t.Fatalf("warm Collect: %v", err)
			}

			// One fire, then the site stays disarmed (#1 budget): the faulty
			// run fails, every later run is clean.
			withFaults(t, "core.row=error#1", 1)
			rows, err := pq.Exec(context.Background(), ExecOptions{Pool: pool})
			if err != nil {
				t.Fatal(err)
			}
			_, err = collectAll(rows, 200)
			if err == nil {
				t.Fatal("injected fault did not surface")
			}
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("error %v does not wrap fault.ErrInjected", err)
			}
			// The sticky contract: Next after the failure repeats the error.
			if _, ok, err2 := rows.Next(); ok || !errors.Is(err2, fault.ErrInjected) {
				t.Fatalf("post-failure Next: ok=%v err=%v, want sticky injected error", ok, err2)
			}
			fault.Reset()

			s := pool.Stats()
			if s.Poisoned == 0 {
				t.Fatalf("failed execution did not poison its bundle: %+v", s)
			}

			// The pool must still serve byte-identical sequences.
			after, err := pq.Exec(context.Background(), ExecOptions{Pool: pool})
			if err != nil {
				t.Fatal(err)
			}
			got, err := collectAll(after, 200)
			if err != nil {
				t.Fatalf("post-poison pooled Collect: %v", err)
			}
			assertSameRows(t, "post-poison pooled vs fresh", got, want)
		})
	}
}

// TestPoolDiscardsBundleOnAbort covers the panic-recovery path: a serving
// layer that recovers a panic calls Rows.Abort, which must poison the pooled
// bundle and leave the pool emitting byte-identical sequences.
func TestPoolDiscardsBundleOnAbort(t *testing.T) {
	g, ont := datasets().L4All(l4all.L1)
	eng := NewEngine(g, ont).WithOptions(Options{DistanceAware: true})
	pq, err := eng.PrepareText(spillQuery)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := pq.Exec(context.Background(), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := collectAll(fresh, 200)
	if err != nil {
		t.Fatalf("fresh Collect: %v", err)
	}

	pool := NewEvalPool(4)
	rows, err := pq.Exec(context.Background(), ExecOptions{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	// Pull a prefix so the bundle holds live mid-query state, then abort as a
	// panic-recovery path would.
	for i := 0; i < 5; i++ {
		if _, ok, err := rows.Next(); !ok || err != nil {
			t.Fatalf("Next %d: ok=%v err=%v", i, ok, err)
		}
	}
	boom := errors.New("recovered panic: slice bounds out of range")
	rows.Abort(boom)
	if _, ok, err := rows.Next(); ok || !errors.Is(err, boom) {
		t.Fatalf("post-Abort Next: ok=%v err=%v, want sticky abort error", ok, err)
	}
	if s := pool.Stats(); s.Poisoned == 0 {
		t.Fatalf("aborted execution did not poison its bundle: %+v", s)
	}

	after, err := pq.Exec(context.Background(), ExecOptions{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	got, err := collectAll(after, 200)
	if err != nil {
		t.Fatalf("post-abort pooled Collect: %v", err)
	}
	assertSameRows(t, "post-abort pooled vs fresh", got, want)
}

// TestSpillFaultSurfacesTypedErrorAndCleansUp arms a spill-write failpoint
// under a tiny spill threshold: the execution must fail with an error
// wrapping ErrSpill through the sticky Rows contract, and releasing the
// failed execution must leave the spill directory empty — a request that
// dies of a disk fault may not leak the disk state of its own demise.
func TestSpillFaultSurfacesTypedErrorAndCleansUp(t *testing.T) {
	g, ont := datasets().L4All(l4all.L1)
	for _, tc := range []struct {
		name string
		spec string
		opts Options
	}{
		{"spill-write", "dstruct.spill.write=error#1", Options{SpillThreshold: 8}},
		{"deferred-write", "dstruct.deferred.write=error#1", Options{SpillThreshold: 8, DistanceAware: true}},
		{"spill-remove", "dstruct.spill.remove=error", Options{SpillThreshold: 8}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			opts := tc.opts
			opts.SpillDir = dir
			eng := NewEngine(g, ont).WithOptions(opts)
			pq, err := eng.PrepareText(spillQuery)
			if err != nil {
				t.Fatal(err)
			}
			withFaults(t, tc.spec, 7)
			rows, err := pq.Exec(context.Background(), ExecOptions{})
			if err != nil {
				t.Fatal(err)
			}
			_, err = collectAll(rows, 0)
			if err == nil {
				t.Fatal("spill fault did not surface")
			}
			if !errors.Is(err, ErrSpill) {
				t.Fatalf("error %v does not wrap omega.ErrSpill", err)
			}
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("error %v does not wrap fault.ErrInjected", err)
			}
			fault.Reset()
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 0 {
				t.Fatalf("%d spill entries leaked after failed execution", len(entries))
			}
		})
	}
}
