package omega_test

import (
	"context"
	"fmt"

	"omega"
)

// Example reproduces the paper's motivating Examples 1–3 in miniature: an
// exact query with a direction mistake returns nothing; APPROX repairs the
// mistake at edit distance 1; RELAX generalises the property through the
// ontology.
func Example() {
	b := omega.NewGraphBuilder()
	_ = b.AddTriple("Oxford", "isLocatedIn", "UK")
	_ = b.AddTriple("alice", "gradFrom", "Oxford")
	_ = b.AddTriple("SummerFest", "isLocatedIn", "UK")
	_ = b.AddTriple("SummerFest", "happenedIn", "Oxford")
	g := b.Freeze()

	ont := omega.NewOntology()
	ont.AddSubproperty("gradFrom", "relationLocatedByObject")
	ont.AddSubproperty("happenedIn", "relationLocatedByObject")

	eng := omega.NewEngine(g, ont)

	show := func(q string) {
		rows, err := eng.QueryText(q)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		got, _ := rows.Collect(3)
		if len(got) == 0 {
			fmt.Println("  no answers")
		}
		for _, r := range got {
			fmt.Printf("  %v\n", r)
		}
	}

	fmt.Println("exact:")
	show(`(?X) <- (UK, isLocatedIn-.gradFrom, ?X)`)
	fmt.Println("APPROX:")
	show(`(?X) <- APPROX (UK, isLocatedIn-.gradFrom, ?X)`)
	fmt.Println("RELAX:")
	show(`(?X) <- RELAX (UK, isLocatedIn-.gradFrom, ?X)`)

	// Output:
	// exact:
	//   no answers
	// APPROX:
	//   [?X=Oxford] dist=1
	//   [?X=SummerFest] dist=1
	//   [?X=alice] dist=1
	// RELAX:
	//   [?X=Oxford] dist=1
}

// ExampleEngine_Prepare shows the serving shape: compile a query once, then
// execute it per request with a context and per-call ExecOptions. Close (via
// ForEach here) releases the run's state deterministically.
func ExampleEngine_Prepare() {
	b := omega.NewGraphBuilder()
	_ = b.AddTriple("Oxford", "isLocatedIn", "UK")
	_ = b.AddTriple("alice", "gradFrom", "Oxford")
	eng := omega.NewEngine(b.Freeze(), nil)

	pq, _ := eng.PrepareText(`(?X) <- APPROX (UK, isLocatedIn-.gradFrom, ?X)`)
	// Any number of goroutines may share pq; each Exec is one request.
	rows, _ := pq.Exec(context.Background(), omega.ExecOptions{Limit: 2})
	_ = rows.ForEach(context.Background(), func(r omega.Row) error {
		fmt.Println(r)
		return nil
	})
	automata, _ := pq.CompileStats()
	fmt.Printf("%d automata, compiled once\n", automata)
	// Output:
	// [?X=Oxford] dist=1
	// [?X=alice] dist=1
	// 1 automata, compiled once
}

// ExampleEngine_Explain shows the evaluation plan for a flexible query.
func ExampleEngine_Explain() {
	b := omega.NewGraphBuilder()
	_ = b.AddTriple("a", "p", "b")
	eng := omega.NewEngine(b.Freeze(), nil)
	plan, _ := eng.Explain(`(?X) <- APPROX (a, p, ?X)`)
	fmt.Print(plan)
	// Output:
	// conjunct 1: APPROX (a, p, ?X)
	//   case 1: constant subject, 1 seed(s)
	//   automaton (APPROX): 2 states, 4 compiled transitions
	//   backend: ranked GetNext (auto: APPROX mode ranks answers by distance)
}
