// Package omega is a Go implementation of the Omega system from
// "Implementing Flexible Operators for Regular Path Queries" (Selmer,
// Poulovassilis, Wood — EDBT/ICDT 2015 workshops, GraphQ).
//
// Omega evaluates conjunctive regular path (CRP) queries over directed
// edge-labelled graphs and extends them with two flexible operators:
//
//   - APPROX — approximate matching by weighted edit operations on the
//     regular expression (insertion, deletion, substitution of edge labels);
//   - RELAX — ontology-driven relaxation using RDFS inference (replace a
//     class/property by a superclass/superproperty; replace a property by a
//     type edge to its domain or range class).
//
// Answers are returned incrementally in non-decreasing distance from the
// original query.
//
// # Quick start
//
//	b := omega.NewGraphBuilder()
//	_ = b.AddTriple("alice", "knows", "bob")
//	_ = b.AddTriple("bob", "knows", "carol")
//	g := b.Freeze()
//
//	eng := omega.NewEngine(g, nil)
//	rows, _ := eng.QueryText(`(?X) <- (alice, knows+, ?X)`)
//	for {
//		row, ok, _ := rows.Next()
//		if !ok {
//			break
//		}
//		fmt.Println(row.Labels, row.Dist)
//	}
//
// # Serving
//
// For concurrent serving, compile once with Engine.Prepare (or PrepareText)
// and execute per request with PreparedQuery.Exec, which takes a
// context.Context for cancellation and per-call ExecOptions (Limit, MaxDist,
// MaxTuples, Mode override). Exec returns a *Rows that must be Closed when
// abandoned before exhaustion, so disk-backed evaluation state is released
// deterministically:
//
//	pq, _ := eng.PrepareText(`(?X) <- APPROX (alice, knows+, ?X)`)
//	rows, _ := pq.Exec(ctx, omega.ExecOptions{Limit: 100})
//	defer rows.Close()
//
// See the examples directory for end-to-end programs, DESIGN.md for the
// architecture, and EXPERIMENTS.md for the reproduction of the paper's
// performance study.
package omega

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"omega/internal/automaton"
	"omega/internal/core"
	"omega/internal/graph"
	"omega/internal/l4all"
	"omega/internal/obs"
	"omega/internal/ontology"
	"omega/internal/query"
	"omega/internal/rpq"
	"omega/internal/yago"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Graph is an immutable, frozen graph store.
	Graph = graph.Graph
	// GraphBuilder accumulates nodes and edges; Freeze yields a Graph.
	GraphBuilder = graph.Builder
	// NodeID identifies a node of a frozen Graph.
	NodeID = graph.NodeID
	// Ontology holds subclass/subproperty hierarchies with domains/ranges.
	Ontology = ontology.Ontology
	// Query is a parsed conjunctive regular path query.
	Query = core.Query
	// Conjunct is one body atom of a Query.
	Conjunct = core.Conjunct
	// Term is a conjunct endpoint: variable or constant.
	Term = core.Term
	// Options configures evaluation (costs, batching, optimisations). These
	// are engine-level knobs, fixed when a query is prepared; the per-call
	// knobs live in ExecOptions.
	Options = core.Options
	// ExecOptions are the per-execution knobs of a prepared query: Limit,
	// MaxDist, MaxTuples override, and Mode override. See the core type for
	// the knob-by-knob contract.
	ExecOptions = core.ExecOptions
	// Mode selects EXACT, APPROX, RELAX or FLEX evaluation of a conjunct.
	Mode = automaton.Mode
	// EditCosts configures APPROX (insertion/deletion/substitution).
	EditCosts = automaton.EditCosts
	// RelaxCosts configures RELAX (β for rule i, γ for rule ii).
	RelaxCosts = automaton.RelaxCosts
	// QueryAnswer is a single result row (head bindings + total distance).
	QueryAnswer = core.QueryAnswer
	// QueryIterator yields QueryAnswers in non-decreasing distance.
	QueryIterator = core.QueryIterator
	// Stats carries evaluation counters (tuples, visited size, phases).
	Stats = core.Stats
	// EvalPool recycles per-execution evaluator state across requests so
	// steady-state serving allocates near zero; see NewEvalPool.
	EvalPool = core.EvalPool
	// PoolStats reports EvalPool effectiveness counters.
	PoolStats = core.PoolStats
	// MemGauge aggregates an execution's accounted resident bytes and
	// carries its memory watermarks; see ExecOptions.Mem and NewMemGauge.
	MemGauge = core.MemGauge
	// Trace records a request's phase spans; see ExecOptions.Trace and
	// NewTrace. All methods are safe on a nil *Trace, and an execution
	// without one pays a single nil check per instrumented site.
	Trace = obs.Trace
	// TraceSummary is a rendered span tree (Rows.TraceSummary); its Render
	// method writes the indented text form, and it marshals to JSON for the
	// serving layer's trace=1 responses.
	TraceSummary = obs.Summary
	// TraceSpan is one node of a TraceSummary's span tree.
	TraceSpan = obs.SpanNode
	// Backend selects the evaluation engine: ranked GetNext (the paper's
	// machinery) or the bulk set-semantics backend for exhaustive exact
	// scans. See Options.Backend and ExecOptions.Backend.
	Backend = core.Backend
	// PathExpr is a parsed regular path expression.
	PathExpr = rpq.Expr
)

// Evaluation modes.
const (
	// Exact evaluates the query as written.
	Exact = automaton.Exact
	// Approx applies the edit-distance APPROX operator.
	Approx = automaton.Approx
	// Relax applies the ontology-driven RELAX operator.
	Relax = automaton.Relax
	// Flex applies both (extension beyond the paper).
	Flex = automaton.Flex
)

// Evaluation backends (Options.Backend / ExecOptions.Backend).
const (
	// BackendAuto (the zero value) lets the planner choose per conjunct:
	// bulk for exhaustive zero-cost exact scans whose seed population makes
	// word-parallelism pay, ranked otherwise. Explain shows the decision.
	BackendAuto = core.BackendAuto
	// BackendRanked forces the ranked GetNext machinery.
	BackendRanked = core.BackendRanked
	// BackendBulk forces the bulk set-semantics engine where eligible;
	// ineligible conjuncts fall back to ranked (Stats.Backend reports what
	// ran).
	BackendBulk = core.BackendBulk
)

// ParseBackend parses "auto", "ranked" or "bulk".
func ParseBackend(s string) (Backend, error) { return core.ParseBackend(s) }

// KnobError is a validation failure for one execution knob from the canonical
// knob registry (ExecOptions.ApplyParams, BindExecFlags). Every surface —
// HTTP 400 bodies, CLI flag errors — reports the same shape, naming the knob.
type KnobError = core.KnobError

// ExecFlags holds the shared execution-knob flags bound by BindExecFlags;
// Apply routes the parsed values through the registry's validators onto an
// ExecOptions.
type ExecFlags = core.ExecFlags

// BindExecFlags registers the shared execution knobs (mode, limit, maxdist,
// max-tuples, backend, soft-mem, hard-mem, parallel — or the named subset) as
// flags on fs with the registry's canonical spellings and help text.
// Per-binary defaults come pre-rendered in defaults, keyed by HTTP parameter
// name, and pass through the same validation as any other value.
func BindExecFlags(fs *flag.FlagSet, defaults map[string]string, names ...string) *ExecFlags {
	return core.BindExecFlags(fs, defaults, names...)
}

// ParseMode parses a mode knob value: exact, approx, relax or flex
// (case-insensitive). The error, like every registry error, is a *KnobError.
func ParseMode(s string) (Mode, error) { return core.ParseMode(s) }

// ParseTimeout parses the request-level timeout knob (Go duration syntax,
// strictly positive).
func ParseTimeout(v string) (time.Duration, error) { return core.ParseTimeout(v) }

// Direction selects which incident edges to follow in Graph traversal
// helpers such as Graph.Neighbors.
type Direction = graph.Direction

// LabelID identifies an interned edge label of a Graph.
type LabelID = graph.LabelID

// Edge directions.
const (
	// Out follows edges from source to target.
	Out = graph.Out
	// In follows edges from target to source.
	In = graph.In
	// Both follows edges in either direction.
	Both = graph.Both
)

// InvalidNode is returned by lookups that find no node.
const InvalidNode = graph.InvalidNode

// ErrTupleBudget is returned when evaluation exceeds the tuple budget
// (Options.MaxTuples, or ExecOptions.MaxTuples for one execution).
var ErrTupleBudget = core.ErrTupleBudget

// ErrCanceled is returned by Rows.Next when the execution's context is
// canceled. It wraps context.Canceled, so errors.Is(err, context.Canceled)
// also holds.
var ErrCanceled = core.ErrCanceled

// ErrDeadline is returned by Rows.Next when the execution's context passes
// its deadline. It wraps context.DeadlineExceeded.
var ErrDeadline = core.ErrDeadline

// ErrClosed is returned by Rows.Next after Rows.Close.
var ErrClosed = core.ErrClosed

// ErrSpill is the typed root of disk I/O failures in spilling executions
// (Options.SpillThreshold > 0): create, write, read and remove failures all
// surface through the Rows sticky-error contract wrapping it, the execution's
// spill directory is cleaned up on release, and any pooled evaluator state is
// discarded rather than recycled. An execution that failed with ErrSpill is
// over; retrying means starting a fresh execution.
var ErrSpill = core.ErrSpill

// ErrMemBudget is returned by Rows.Next when an execution crosses its hard
// memory watermark (ExecOptions.HardMemBytes), or when the serving layer's
// memory broker aborts it as the largest-footprint victim under global
// pressure. The execution is over and its pooled evaluator state is discarded
// rather than recycled (shedding the capacity is the point); re-running the
// query with a higher budget — or after load subsides — starts fresh. The
// soft watermark (SoftMemBytes) never produces this error: it degrades the
// execution to disk spilling and keeps it streaming.
var ErrMemBudget = core.ErrMemBudget

// ModeOverride is a convenience for ExecOptions.Mode: it returns a pointer to
// mode, overriding every conjunct's mode for one execution.
func ModeOverride(mode Mode) *Mode { m := mode; return &m }

// NewEvalPool returns an evaluator-state pool retaining at most max idle
// state bundles (0 picks a default). Thread it through ExecOptions.Pool (or
// engine-wide through Options.Pool) so repeated executions reuse the grown
// dictionaries, hash tables and scratch buffers of earlier requests instead
// of reallocating and regrowing them; pooled emission is byte-identical to
// fresh. One pool may serve any number of prepared queries over any number
// of graphs, from any number of goroutines.
func NewEvalPool(max int) *EvalPool { return core.NewEvalPool(max) }

// NewMemGauge returns a memory gauge with the given soft and hard watermarks
// (0 disables either). Pass it via ExecOptions.Mem when an external observer
// — like the serving layer's memory broker — needs to watch an execution's
// live bytes; plain callers set ExecOptions.SoftMemBytes/HardMemBytes and let
// Exec create the gauge internally.
func NewMemGauge(soft, hard int64) *MemGauge { return core.NewMemGauge(soft, hard) }

// NewTrace starts a request trace whose root span opens immediately. Pass it
// via ExecOptions.Trace to record the execution's phase spans, and read the
// result with Rows.TraceSummary. id becomes the trace's request ID; an empty
// id generates a fresh one.
func NewTrace(id string) *Trace { return obs.NewTrace(id) }

// NewGraphBuilder returns an empty graph builder.
func NewGraphBuilder() *GraphBuilder { return graph.NewBuilder() }

// NewOntology returns an empty ontology.
func NewOntology() *Ontology { return ontology.New() }

// ParseQuery parses the textual CRP query form, e.g.
//
//	(?X) <- APPROX (UK, isLocatedIn-.gradFrom, ?X)
func ParseQuery(text string) (*Query, error) { return query.Parse(text) }

// ParsePath parses a regular path expression, e.g. "isLocatedIn-.gradFrom".
func ParsePath(text string) (*PathExpr, error) { return rpq.Parse(text) }

// Open initialises evaluation of q and returns an iterator over its answers
// in non-decreasing total distance.
func Open(g *Graph, ont *Ontology, q *Query, opts Options) (QueryIterator, error) {
	return core.OpenQuery(g, ont, q, opts)
}

// SaveGraph / LoadGraph serialise graphs in the omega-graph v1 text format.
func SaveGraph(w io.Writer, g *Graph) error { return graph.Save(w, g) }
func LoadGraph(r io.Reader) (*Graph, error) { return graph.Load(r) }

// SaveOntology / LoadOntology serialise ontologies in the omega-ontology v1
// text format.
func SaveOntology(w io.Writer, o *Ontology) error { return ontology.Save(w, o) }
func LoadOntology(r io.Reader) (*Ontology, error) { return ontology.Load(r) }

// LoadNTriples imports an RDF N-Triples document into the builder, returning
// the number of triples read. IRIs are shortened to their local names unless
// keepIRIs is set; rdf:type maps onto the reserved `type` edge label.
func LoadNTriples(r io.Reader, b *GraphBuilder, keepIRIs bool) (int, error) {
	return graph.LoadNTriples(r, b, keepIRIs)
}

// NamedQuery is a benchmark query with an identifier.
type NamedQuery struct {
	ID   string
	Text string
}

// GenerateL4All builds the L4All data graph of §4.1 at scale "L1".."L4".
func GenerateL4All(scale string) (*Graph, *Ontology, error) {
	for _, s := range l4all.Scales() {
		if strings.EqualFold(s.String(), scale) {
			g, o := l4all.Generate(s)
			return g, o, nil
		}
	}
	return nil, nil, fmt.Errorf("omega: unknown L4All scale %q (want L1..L4)", scale)
}

// L4AllQueries returns the 12 queries of Figure 4.
func L4AllQueries() []NamedQuery {
	var out []NamedQuery
	for _, q := range l4all.Queries() {
		out = append(out, NamedQuery{ID: q.ID, Text: q.Text})
	}
	return out
}

// GenerateYAGO builds the YAGO-shaped data graph of §4.2, scaled by factor
// (1.0 is the laptop-sized default; the paper's dump is roughly 100×).
func GenerateYAGO(factor float64) (*Graph, *Ontology) {
	cfg := yago.DefaultConfig()
	if factor > 0 && factor != 1.0 {
		cfg = cfg.Scaled(factor)
	}
	return yago.Generate(cfg)
}

// YAGOQueries returns the 9 queries of Figure 9.
func YAGOQueries() []NamedQuery {
	var out []NamedQuery
	for _, q := range yago.Queries() {
		out = append(out, NamedQuery{ID: q.ID, Text: q.Text})
	}
	return out
}
