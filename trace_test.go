package omega

import (
	"context"
	"testing"

	"omega/internal/l4all"
	"omega/internal/obs"
)

// Span-tree regression tests: the taxonomy of trace spans is part of the
// observable surface (operators build dashboards and habits around the
// names), so these tests pin the tree shape a traced execution produces for
// each backend and driver. New spans may be added; the ones asserted here
// must not silently disappear or reparent.

// tracedRun executes text on eng with a fresh trace and drains it fully,
// returning the summary (taken after Close so the close span is in the tree)
// and the final stats.
func tracedRun(t *testing.T, eng *Engine, text string, eo ExecOptions) (*TraceSummary, Stats) {
	t.Helper()
	pq, err := eng.PrepareText(text)
	if err != nil {
		t.Fatalf("PrepareText(%q): %v", text, err)
	}
	eo.Trace = NewTrace("trace-test-" + t.Name())
	rows, err := pq.Exec(context.Background(), eo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.Collect(0); err != nil {
		t.Fatal(err)
	}
	stats := rows.Stats()
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	sum := rows.TraceSummary()
	if sum == nil {
		t.Fatal("TraceSummary returned nil for a traced run")
	}
	return sum, stats
}

// requireSpan asserts the named span exists and returns it.
func requireSpan(t *testing.T, sum *TraceSummary, name string) *TraceSpan {
	t.Helper()
	n := sum.Node(name)
	if n == nil {
		t.Fatalf("span %q missing from trace %s", name, sum.ID)
	}
	return n
}

func TestTraceSpanTreeRanked(t *testing.T) {
	g, ont := datasets().L4All(l4all.L1)
	eng := NewEngine(g, ont).WithOptions(Options{DistanceAware: true})
	sum, stats := tracedRun(t, eng, "(?X) <- APPROX (Librarians, type-.job-.next, ?X)", ExecOptions{Limit: 50})

	if sum.ID != "trace-test-TestTraceSpanTreeRanked" {
		t.Fatalf("trace ID not propagated: %q", sum.ID)
	}
	if sum.Root == nil || sum.Root.Name != obs.SpanRequest {
		t.Fatalf("root span is not %q: %+v", obs.SpanRequest, sum.Root)
	}
	exec := requireSpan(t, sum, obs.SpanExec)
	if exec.Attrs["rows"] == 0 {
		t.Fatalf("exec span has no rows attr: %+v", exec.Attrs)
	}
	if exec.Attrs["ttfr_us"] == 0 {
		t.Fatalf("exec span has no ttfr_us attr: %+v", exec.Attrs)
	}
	conj := requireSpan(t, sum, obs.SpanConjunct)
	if conj.Attrs["tuples_popped"] == 0 {
		t.Fatalf("conjunct span has no tuples_popped: %+v", conj.Attrs)
	}
	requireSpan(t, sum, obs.SpanClose)
	if stats.TTFRNanos == 0 {
		t.Fatalf("Stats.TTFRNanos not stamped: %+v", stats)
	}
}

func TestTraceSpanTreeBulk(t *testing.T) {
	g, ont := datasets().L4All(l4all.L1)
	eng := NewEngine(g, ont).WithOptions(Options{Backend: BackendBulk})
	sum, stats := tracedRun(t, eng, "(?X, ?Y) <- (?X, job.type, ?Y)", ExecOptions{Limit: 100})

	conj := requireSpan(t, sum, obs.SpanConjunct)
	if conj.Attrs["bulk"] != 1 {
		t.Fatalf("bulk conjunct not marked bulk=1: %+v", conj.Attrs)
	}
	idx := requireSpan(t, sum, obs.SpanBulkIndex)
	if idx.Attrs["bytes"] == 0 {
		t.Fatalf("bulk_index span has no bytes attr: %+v", idx.Attrs)
	}
	if stats.Backend != "bulk" {
		t.Fatalf("expected bulk backend, got %q", stats.Backend)
	}
}

func TestTraceSpanTreeDistanceAware(t *testing.T) {
	g, ont := datasets().L4All(l4all.L1)
	eng := NewEngine(g, ont).WithOptions(Options{DistanceAware: true})
	// RELAX over the ontology steps ψ through several phases; every resumed
	// phase (phase 2 onward) must record a psi_phase span under the exec span.
	sum, stats := tracedRun(t, eng, "(?X) <- RELAX (Librarians, type-, ?X)", ExecOptions{})
	if stats.Phases < 2 {
		t.Skipf("query ran in %d phase(s); need ≥ 2 for psi_phase spans", stats.Phases)
	}
	phase := requireSpan(t, sum, obs.SpanPsiPhase)
	if phase.Attrs["psi"] == 0 {
		t.Fatalf("psi_phase span has no psi attr: %+v", phase.Attrs)
	}
	// Resumed phases: one span each, phase 1 is covered by the conjunct span.
	exec := requireSpan(t, sum, obs.SpanExec)
	var phaseSpans int
	for _, c := range exec.Children {
		if c.Name == obs.SpanPsiPhase {
			phaseSpans++
		}
	}
	if phaseSpans != stats.Phases-1 {
		t.Fatalf("expected %d psi_phase spans under exec, found %d", stats.Phases-1, phaseSpans)
	}
}

func TestTraceSpanTreeMultiConjunct(t *testing.T) {
	g, ont := datasets().L4All(l4all.L1)
	eng := NewEngine(g, ont)
	sum, _ := tracedRun(t, eng, "(?X, ?Y) <- (?X, job, ?Y), (?Y, type, Occupation)", ExecOptions{Limit: 20})

	exec := requireSpan(t, sum, obs.SpanExec)
	var conjuncts []*TraceSpan
	for _, c := range exec.Children {
		if c.Name == obs.SpanConjunct {
			conjuncts = append(conjuncts, c)
		}
	}
	if len(conjuncts) != 2 {
		t.Fatalf("expected 2 conjunct spans, found %d", len(conjuncts))
	}
	for want, c := range conjuncts {
		if got := c.Attrs["idx"]; got != int64(want) {
			t.Fatalf("conjunct %d has idx attr %d", want, got)
		}
	}
}

// TestTraceDisabledNoAllocs pins the hot-path contract: every instrumented
// site guards with one nil check, and the nil-receiver Trace methods
// themselves allocate nothing — so an untraced request pays zero allocations
// to the observability layer.
func TestTraceDisabledNoAllocs(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(obs.Root, obs.SpanQuantum)
		tr.SetAttr(sp, "rows", 42)
		tr.End(sp)
		_ = tr.ID()
		if s := tr.Summary(); s != nil {
			t.Fatal("nil trace produced a summary")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil-trace operations allocate: %v allocs/run", allocs)
	}
}

// TestTraceSpillIOCounters: a spilling execution reports the bytes and time
// its spill files cost, both in Stats and on the conjunct span.
func TestTraceSpillIO(t *testing.T) {
	g, ont := datasets().L4All(l4all.L1)
	eng := NewEngine(g, ont).WithOptions(Options{
		DistanceAware:  true,
		SpillThreshold: 8,
		SpillDir:       t.TempDir(),
	})
	sum, stats := tracedRun(t, eng, "(?X) <- APPROX (Librarians, type-.job-.next, ?X)", ExecOptions{Limit: 500})
	if stats.SpillIOBytes == 0 {
		t.Skip("execution did not spill; cannot assert spill I/O counters")
	}
	if stats.SpillIONanos == 0 {
		t.Fatalf("SpillIOBytes=%d but SpillIONanos=0", stats.SpillIOBytes)
	}
	conj := requireSpan(t, sum, obs.SpanConjunct)
	if conj.Attrs["spill_io_bytes"] == 0 {
		t.Fatalf("conjunct span missing spill_io_bytes: %+v", conj.Attrs)
	}
}
