package omega_test

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"testing"
	"time"

	"omega"
	"omega/internal/fault"
	"omega/internal/serve"
)

// Chaos tests: randomized but seeded fault schedules over the study corpus,
// at the engine level and through the full HTTP serving stack. Each schedule
// is a probabilistic failpoint spec; the per-site RNGs are seeded, so a
// failing (schedule, seed) pair replays exactly. The invariants checked are
// the failure-model contract, not specific rows:
//
//   - every failure surfaces as a typed error (ErrSpill, fault.ErrInjected,
//     or a recovered panic) through the sticky Rows contract;
//   - no execution leaks spill files, whatever killed it;
//   - pooled evaluator state is never recycled across a failure: once faults
//     are disarmed, pooled executions are byte-identical to fresh ones;
//   - the server keeps serving — /healthz green, /statsz parseable — across
//     panics, disk faults and write failures.
//
// This file lives in package omega_test (not omega) so it can import
// internal/serve, which itself imports omega.

const chaosQuery = "(?X) <- APPROX (Librarians, type-.job-.next, ?X)"

// chaosCorpus returns a small query mix: the spill-heavy APPROX query plus a
// few corpus queries, enough shape diversity to reach every fault site.
func chaosCorpus(tb testing.TB) []string {
	tb.Helper()
	texts := []string{chaosQuery}
	for _, q := range omega.L4AllQueries()[:3] {
		texts = append(texts, q.Text)
	}
	return texts
}

func chaosEngine(tb testing.TB, opts omega.Options) *omega.Engine {
	tb.Helper()
	g, ont, err := omega.GenerateL4All("L1")
	if err != nil {
		tb.Fatal(err)
	}
	return omega.NewEngine(g, ont).WithOptions(opts)
}

// drainChaos pulls rows until exhaustion or failure, recovering panics the
// way a serving worker does: abort the execution so its state (pooled or
// disk-backed) is discarded, and report the panic as the terminal error.
func drainChaos(rows *omega.Rows, limit int) (n int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("recovered panic: %v", r)
			rows.Abort(err)
		}
	}()
	for limit <= 0 || n < limit {
		_, ok, e := rows.Next()
		if e != nil {
			rows.Close()
			return n, e
		}
		if !ok {
			break
		}
		n++
	}
	rows.Close()
	return n, nil
}

// typedChaosError reports whether err is one of the failure model's known
// terminal errors for an execution running under an armed fault schedule.
func typedChaosError(err error) bool {
	return errors.Is(err, omega.ErrSpill) ||
		errors.Is(err, omega.ErrMemBudget) ||
		errors.Is(err, fault.ErrInjected) ||
		strings.Contains(err.Error(), "recovered panic")
}

// mergeFired accumulates the sites that actually fired so far.
func mergeFired(fired map[string]int64) {
	for site, st := range fault.Stats() {
		fired[site] += st.Fires
	}
}

// TestChaosSpillFaults storms the disk-failure surface: spilling executions
// (dictionary + deferred frontier) under probabilistic write/load/remove
// faults, across several seeds. Whatever dies must die typed, and the spill
// parent must be empty once every execution is released.
func TestChaosSpillFaults(t *testing.T) {
	dir := t.TempDir()
	eng := chaosEngine(t, omega.Options{
		DistanceAware:  true,
		SpillThreshold: 8,
		SpillDir:       dir,
	})
	queries := chaosCorpus(t)
	schedules := []string{
		"dstruct.spill.write=error@0.4;dstruct.deferred.write=error@0.3",
		"dstruct.spill.load=error@0.5;dstruct.deferred.load=error@0.4",
		"dstruct.spill.remove=error@0.6;dstruct.deferred.remove=error@0.5;dstruct.spill.write=error@0.1",
	}
	fired := map[string]int64{}
	t.Cleanup(fault.Reset)
	failures := 0
	for _, spec := range schedules {
		for seed := int64(1); seed <= 3; seed++ {
			if err := fault.Configure(spec, seed); err != nil {
				t.Fatal(err)
			}
			for _, text := range queries {
				pq, err := eng.PrepareText(text)
				if err != nil {
					t.Fatal(err)
				}
				rows, err := pq.Exec(context.Background(), omega.ExecOptions{})
				if err != nil {
					t.Fatalf("%s seed %d: Exec: %v", spec, seed, err)
				}
				if _, err := drainChaos(rows, 150); err != nil {
					failures++
					if !typedChaosError(err) {
						t.Fatalf("%s seed %d %q: untyped error %v", spec, seed, text, err)
					}
				}
			}
			mergeFired(fired)
			fault.Reset()
		}
	}
	if failures == 0 {
		t.Fatal("no execution ever failed — the schedules are not exercising anything")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("spill dir not empty after chaos: %v", names)
	}
	if len(fired) < 3 {
		t.Fatalf("only %d fault sites fired (%v), want >= 3", len(fired), fired)
	}
}

// TestChaosPooledExecutions storms the pool-poisoning surface: pooled,
// memory-resident executions under probabilistic evaluation errors and
// panics. After every faulty round the faults are disarmed and each query's
// pooled output must be byte-identical to the fresh baseline — no corrupted
// bundle may ever reach a later request.
func TestChaosPooledExecutions(t *testing.T) {
	eng := chaosEngine(t, omega.Options{DistanceAware: true})
	queries := chaosCorpus(t)
	const limit = 150

	type baseline struct {
		pq   *omega.PreparedQuery
		rows []omega.Row
	}
	baselines := make([]baseline, 0, len(queries))
	for _, text := range queries {
		pq, err := eng.PrepareText(text)
		if err != nil {
			t.Fatal(err)
		}
		r, err := pq.Exec(context.Background(), omega.ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := r.Collect(limit)
		r.Close()
		if err != nil {
			t.Fatal(err)
		}
		baselines = append(baselines, baseline{pq: pq, rows: want})
	}

	pool := omega.NewEvalPool(8)
	fired := map[string]int64{}
	t.Cleanup(fault.Reset)
	failures := 0
	for seed := int64(1); seed <= 4; seed++ {
		// Alternate between error and panic rounds so both failure shapes
		// pass through the pool.
		spec := "core.row=error@0.03"
		if seed%2 == 0 {
			spec = "core.row=panic@0.02"
		}
		if err := fault.Configure(spec, seed); err != nil {
			t.Fatal(err)
		}
		for _, b := range baselines {
			rows, err := b.pq.Exec(context.Background(), omega.ExecOptions{Pool: pool})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := drainChaos(rows, limit); err != nil {
				failures++
				if !typedChaosError(err) {
					t.Fatalf("seed %d: untyped error %v", seed, err)
				}
			}
		}
		mergeFired(fired)
		fault.Reset()

		// Disarmed: every pooled run must match the fresh baseline exactly.
		for qi, b := range baselines {
			rows, err := b.pq.Exec(context.Background(), omega.ExecOptions{Pool: pool})
			if err != nil {
				t.Fatal(err)
			}
			got, err := rows.Collect(limit)
			rows.Close()
			if err != nil {
				t.Fatalf("seed %d query %d: clean pooled run failed: %v", seed, qi, err)
			}
			if len(got) != len(b.rows) {
				t.Fatalf("seed %d query %d: pooled %d rows, fresh %d", seed, qi, len(got), len(b.rows))
			}
			for i := range got {
				if got[i].Dist != b.rows[i].Dist || got[i].Labels[0] != b.rows[i].Labels[0] {
					t.Fatalf("seed %d query %d row %d: pooled %v, fresh %v", seed, qi, i, got[i], b.rows[i])
				}
			}
		}
	}
	if failures == 0 {
		t.Fatal("no execution ever failed — the schedule is not exercising anything")
	}
	if s := pool.Stats(); s.Poisoned == 0 {
		t.Fatalf("failures occurred but no bundle was poisoned: %+v", s)
	}
}

// TestChaosServer storms the full serving stack: concurrent HTTP requests
// against a spilling, pooled server while panics, evaluation errors, disk
// faults and write-path failures all fire probabilistically. Individual
// requests may fail — but only with well-formed responses; the server itself
// must end the storm healthy, stats-serving, and with zero leftover disk
// state after drain.
func TestChaosServer(t *testing.T) {
	spillDir := t.TempDir()
	eng := chaosEngine(t, omega.Options{
		DistanceAware:  true,
		SpillThreshold: 8,
		SpillDir:       spillDir,
	})
	srv := serve.New(serve.Config{
		Engine:  eng,
		Workers: 4,
		Queue:   16,
		Quantum: 8,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := "serve.quantum=panic@0.03;serve.write=error@0.02;dstruct.spill.write=error@0.15;core.row=error@0.01;bulk.step=error@0.05;par.shard=error@0.05;bulk.block=error@0.05"
	if err := fault.Configure(spec, 42); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Reset)

	const (
		clients  = 6
		requests = 8
	)
	q := url.Values{"q": {chaosQuery}, "limit": {"80"}}
	target := ts.URL + "/query?" + q.Encode()
	// A quarter of the storm goes through the bulk backend (forced: the
	// request is limited, so auto would stream a ranked prefix), reaching the
	// bulk.step fault site through the same serving stack.
	bq := url.Values{"q": {"(?X, ?Y) <- (?X, job.type, ?Y)"}, "backend": {"bulk"}, "limit": {"80"}}
	bulkTarget := ts.URL + "/query?" + bq.Encode()
	// Another half runs the same variable-subject query at parallelism 8,
	// exhaustively. On this spill-configured engine the ranked request routes
	// through the shard split's serial fallback (spilling executions are not
	// shard-eligible), while the bulk request's block fan-out engages and
	// reaches the bulk.block worker site; TestChaosParShard covers par.shard
	// deterministically on a spill-free engine.
	pq := url.Values{"q": {"(?X, ?Y) <- (?X, job.type, ?Y)"}, "backend": {"ranked"}, "parallel": {"8"}}
	parTarget := ts.URL + "/query?" + pq.Encode()
	pbq := url.Values{"q": {"(?X, ?Y) <- (?X, job.type, ?Y)"}, "backend": {"bulk"}, "parallel": {"8"}}
	parBulkTarget := ts.URL + "/query?" + pbq.Encode()
	var wg sync.WaitGroup
	var mu sync.Mutex
	statuses := map[int]int{}
	inBandErrors := 0
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				u := target
				switch r % 4 {
				case 1:
					u = bulkTarget
				case 2:
					u = parTarget
				case 3:
					u = parBulkTarget
				}
				resp, err := ts.Client().Get(u)
				if err != nil {
					t.Errorf("GET: %v", err)
					return
				}
				sawError := false
				sc := bufio.NewScanner(resp.Body)
				sc.Buffer(make([]byte, 1<<20), 1<<20)
				for sc.Scan() {
					var probe map[string]any
					if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
						// Non-NDJSON bodies come from http.Error on pre-stream
						// failures; only NDJSON responses must parse per line.
						if resp.StatusCode == http.StatusOK {
							t.Errorf("bad NDJSON line %q", sc.Bytes())
						}
						break
					}
					if probe["error"] != nil {
						sawError = true
					}
				}
				resp.Body.Close()
				mu.Lock()
				statuses[resp.StatusCode]++
				if sawError {
					inBandErrors++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	mergeFired := map[string]int64{}
	for site, st := range fault.Stats() {
		if st.Fires > 0 {
			mergeFired[site] = st.Fires
		}
	}
	if len(mergeFired) < 3 {
		t.Fatalf("only %d fault sites fired (%v), want >= 3", len(mergeFired), mergeFired)
	}
	for code := range statuses {
		switch code {
		case http.StatusOK, http.StatusInternalServerError,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		default:
			t.Fatalf("unexpected status %d (statuses: %v)", code, statuses)
		}
	}
	fault.Reset()

	// The server survived the storm: health and stats endpoints answer, and
	// a clean query streams end to end.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after chaos: %d", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var statsz struct {
		Scheduler serve.SchedulerStats `json:"scheduler"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&statsz); err != nil {
		t.Fatalf("statsz after chaos: %v", err)
	}
	resp.Body.Close()
	clean, err := ts.Client().Get(target)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(clean.Body)
	clean.Body.Close()
	if clean.StatusCode != http.StatusOK || !strings.Contains(string(body), `"done":true`) {
		t.Fatalf("clean query after chaos: status=%d body tail %q", clean.StatusCode, tail(string(body)))
	}

	// Drain and check for leaked disk state.
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("server Close: %v", err)
	}
	entries, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("spill dir not empty after drain: %v", names)
	}
	t.Logf("chaos summary: statuses=%v in-band errors=%d fired=%v panics=%d",
		statuses, inBandErrors, mergeFired, statsz.Scheduler.Panics)
}

// TestChaosBulkStep storms the bulk backend's per-level fault site: forced
// bulk executions of an exhaustive exact query under a probabilistic
// bulk.step schedule and an externally observed memory gauge. Failures must
// be the typed fault.ErrInjected, every death must refund its accounted
// bytes to the gauge, and once disarmed the bulk answer set must match the
// ranked baseline exactly.
func TestChaosBulkStep(t *testing.T) {
	eng := chaosEngine(t, omega.Options{})
	pq, err := eng.PrepareText("(?X, ?Y) <- (?X, job.type, ?Y)")
	if err != nil {
		t.Fatal(err)
	}
	key := func(r omega.Row) string { return fmt.Sprintf("%v", r.Nodes) }
	baselineRows := func(eo omega.ExecOptions) map[string]bool {
		rows, err := pq.Exec(context.Background(), eo)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rows.Collect(0)
		rows.Close()
		if err != nil {
			t.Fatal(err)
		}
		set := make(map[string]bool, len(got))
		for _, r := range got {
			set[key(r)] = true
		}
		return set
	}
	want := baselineRows(omega.ExecOptions{Backend: omega.BackendRanked})

	t.Cleanup(fault.Reset)
	failures := 0
	var maxPeak int64
	for seed := int64(1); seed <= 6; seed++ {
		if err := fault.Configure("bulk.step=error@0.5", seed); err != nil {
			t.Fatal(err)
		}
		gauge := omega.NewMemGauge(0, 0)
		rows, err := pq.Exec(context.Background(), omega.ExecOptions{Backend: omega.BackendBulk, Mem: gauge})
		if err != nil {
			t.Fatalf("seed %d: Exec: %v", seed, err)
		}
		n, err := drainChaos(rows, 0)
		if err != nil {
			failures++
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("seed %d: bulk death not typed fault.ErrInjected: %v", seed, err)
			}
			if !strings.Contains(err.Error(), "bulk step") {
				t.Fatalf("seed %d: error %v does not name the bulk.step site", seed, err)
			}
		}
		// The failpoint fires before the step's byte accounting, so a
		// first-step kill legitimately records no peak; across the seeds at
		// least one run must get far enough to account its matrices.
		if p := gauge.PeakBytes(); p > maxPeak {
			maxPeak = p
		}
		if live := gauge.LiveBytes(); live != 0 {
			t.Fatalf("seed %d: %d live bytes after release (drained %d rows, err=%v)", seed, live, n, err)
		}
		fault.Reset()

		// Disarmed: the same prepared query, forced bulk, matches ranked.
		got := baselineRows(omega.ExecOptions{Backend: omega.BackendBulk})
		if len(got) != len(want) {
			t.Fatalf("seed %d: bulk %d rows after disarm, ranked %d", seed, len(got), len(want))
		}
		for k := range got {
			if !want[k] {
				t.Fatalf("seed %d: bulk row %s not in ranked set", seed, k)
			}
		}
	}
	if failures == 0 {
		t.Fatal("bulk.step@0.5 never killed an execution across 6 seeds — the site is not armed")
	}
	if maxPeak == 0 {
		t.Fatal("no bulk execution ever accounted bytes into the gauge")
	}
}

// TestChaosParShard storms the parallel worker fault sites: sharded ranked
// executions under a probabilistic par.shard schedule, and block-fanned bulk
// executions under bulk.block, both at parallelism 8 over a variable-subject
// exact query (large enough a source population that the fan-out genuinely
// engages). Worker deaths must surface as the typed fault.ErrInjected naming
// the site, every death must refund its accounted bytes to the externally
// observed gauge, and once disarmed the parallel ordered emission must replay
// the serial sequence byte for byte.
func TestChaosParShard(t *testing.T) {
	eng := chaosEngine(t, omega.Options{})
	pq, err := eng.PrepareText("(?X, ?Y) <- (?X, job.type, ?Y)")
	if err != nil {
		t.Fatal(err)
	}
	ordered := func(eo omega.ExecOptions) []string {
		rows, err := pq.Exec(context.Background(), eo)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rows.Collect(0)
		rows.Close()
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]string, len(got))
		for i, r := range got {
			keys[i] = fmt.Sprintf("%v d%d", r.Nodes, r.Dist)
		}
		return keys
	}

	sites := []struct {
		spec    string // armed schedule
		name    string // substring the typed error must carry
		backend omega.Backend
	}{
		{"par.shard=error@0.5", "shard", omega.BackendRanked},
		{"bulk.block=error@0.5", "bulk block", omega.BackendBulk},
	}
	t.Cleanup(fault.Reset)
	for _, site := range sites {
		serial := ordered(omega.ExecOptions{Backend: site.backend, Parallelism: 1})
		failures := 0
		engaged := false
		for seed := int64(1); seed <= 6; seed++ {
			if err := fault.Configure(site.spec, seed); err != nil {
				t.Fatal(err)
			}
			gauge := omega.NewMemGauge(0, 0)
			rows, err := pq.Exec(context.Background(), omega.ExecOptions{
				Backend: site.backend, Parallelism: 8, Mem: gauge,
			})
			if err != nil {
				t.Fatalf("%s seed %d: Exec: %v", site.spec, seed, err)
			}
			n, err := drainChaos(rows, 0)
			if err != nil {
				failures++
				if !errors.Is(err, fault.ErrInjected) {
					t.Fatalf("%s seed %d: worker death not typed fault.ErrInjected: %v", site.spec, seed, err)
				}
				if !strings.Contains(err.Error(), site.name) {
					t.Fatalf("%s seed %d: error %v does not name the %s site", site.spec, seed, err, site.name)
				}
			}
			if live := gauge.LiveBytes(); live != 0 {
				t.Fatalf("%s seed %d: %d live bytes after release (drained %d rows, err=%v)", site.spec, seed, live, n, err)
			}
			fault.Reset()

			// Disarmed: the same prepared query at parallelism 8 must replay
			// the serial ordered emission exactly, and report the fan-out it
			// actually ran (no vacuous pass through a serial fallback).
			rows, err = pq.Exec(context.Background(), omega.ExecOptions{Backend: site.backend, Parallelism: 8})
			if err != nil {
				t.Fatal(err)
			}
			got, err := rows.Collect(0)
			st := rows.Stats()
			rows.Close()
			if err != nil {
				t.Fatalf("%s seed %d: clean parallel run failed: %v", site.spec, seed, err)
			}
			if st.Shards >= 2 {
				engaged = true
			}
			if len(got) != len(serial) {
				t.Fatalf("%s seed %d: parallel %d rows after disarm, serial %d", site.spec, seed, len(got), len(serial))
			}
			for i, r := range got {
				if k := fmt.Sprintf("%v d%d", r.Nodes, r.Dist); k != serial[i] {
					t.Fatalf("%s seed %d row %d: parallel %s, serial %s", site.spec, seed, i, k, serial[i])
				}
			}
		}
		if failures == 0 {
			t.Fatalf("%s never killed an execution across 6 seeds — the site is not armed", site.spec)
		}
		if !engaged {
			t.Fatalf("%s: no clean run ever reported >= 2 shards — the fan-out never engaged", site.spec)
		}
	}
}

// TestChaosMemoryPressure storms the memory-governance surface: concurrent
// pooled executions under tiny soft/hard budgets and probabilistic
// mem.soft/mem.hard failpoints, then the full HTTP stack under a tiny
// server-wide broker budget. The contract under pressure:
//
//   - every budget death is the typed omega.ErrMemBudget (soft crossings
//     never kill — they escalate to disk and keep streaming);
//   - once budgets are lifted and faults disarmed, pooled executions are
//     byte-identical to fresh ones (no bundle survives an abort, no armed
//     spill state leaks into a later request);
//   - zero spill directories remain on disk;
//   - the server ends the storm healthy, with the aborts visible in /statsz.
func TestChaosMemoryPressure(t *testing.T) {
	spillParent := t.TempDir()
	eng := chaosEngine(t, omega.Options{
		DistanceAware: true,
		SpillDir:      spillParent, // escalation target; threshold stays 0 so pooling engages
	})
	queries := chaosCorpus(t)
	const limit = 150

	type baseline struct {
		pq   *omega.PreparedQuery
		rows []omega.Row
	}
	baselines := make([]baseline, 0, len(queries))
	for _, text := range queries {
		pq, err := eng.PrepareText(text)
		if err != nil {
			t.Fatal(err)
		}
		r, err := pq.Exec(context.Background(), omega.ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := r.Collect(limit)
		r.Close()
		if err != nil {
			t.Fatal(err)
		}
		baselines = append(baselines, baseline{pq: pq, rows: want})
	}

	pool := omega.NewEvalPool(8)
	t.Cleanup(fault.Reset)
	budgets := []omega.ExecOptions{
		{SoftMemBytes: 4 << 10},                         // degrade early, stream on
		{SoftMemBytes: 4 << 10, HardMemBytes: 24 << 10}, // degrade, then maybe die
		{HardMemBytes: 8 << 10},                         // die fast
	}
	var (
		mu          sync.Mutex
		memAborts   int
		escalations int
	)
	for seed := int64(1); seed <= 3; seed++ {
		if err := fault.Configure("mem.soft=error@0.3;mem.hard=error@0.02", seed); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for _, b := range baselines {
			for bi := range budgets {
				wg.Add(1)
				go func(b baseline, eo omega.ExecOptions) {
					defer wg.Done()
					eo.Pool = pool
					rows, err := b.pq.Exec(context.Background(), eo)
					if err != nil {
						t.Errorf("Exec under budget: %v", err)
						return
					}
					n, err := drainChaosStats(rows, limit, &mu, &escalations)
					if err != nil {
						if !typedChaosError(err) {
							t.Errorf("untyped error after %d rows: %v", n, err)
							return
						}
						mu.Lock()
						if errors.Is(err, omega.ErrMemBudget) {
							memAborts++
						}
						mu.Unlock()
					}
				}(b, budgets[bi])
			}
		}
		wg.Wait()
		fault.Reset()

		// Budgets lifted, faults disarmed: pooled output must be byte-identical
		// to the fresh baseline — aborted bundles were discarded, surviving
		// ones carry no armed spill state.
		for qi, b := range baselines {
			rows, err := b.pq.Exec(context.Background(), omega.ExecOptions{Pool: pool})
			if err != nil {
				t.Fatal(err)
			}
			got, err := rows.Collect(limit)
			rows.Close()
			if err != nil {
				t.Fatalf("seed %d query %d: clean pooled run failed: %v", seed, qi, err)
			}
			if len(got) != len(b.rows) {
				t.Fatalf("seed %d query %d: pooled %d rows, fresh %d", seed, qi, len(got), len(b.rows))
			}
			for i := range got {
				if got[i].Dist != b.rows[i].Dist || got[i].Labels[0] != b.rows[i].Labels[0] {
					t.Fatalf("seed %d query %d row %d: pooled %v, fresh %v", seed, qi, i, got[i], b.rows[i])
				}
			}
		}
	}
	if memAborts == 0 {
		t.Fatal("no execution ever died of its memory budget — the storm exercised nothing")
	}
	if escalations == 0 {
		t.Fatal("no execution ever escalated to disk — the soft watermark exercised nothing")
	}
	if entries, err := os.ReadDir(spillParent); err != nil || len(entries) != 0 {
		t.Fatalf("spill parent not empty after storm: %v entries, err=%v", len(entries), err)
	}

	// Full HTTP stack: tiny per-request hard watermark by server default, a
	// broker with a real budget, concurrent clients. Requests may die — only
	// with well-formed responses and the typed status mapping.
	httpSpill := t.TempDir()
	srv := serve.New(serve.Config{
		Engine: chaosEngine(t, omega.Options{
			DistanceAware: true,
			SpillDir:      httpSpill,
		}),
		Workers:          4,
		Queue:            8,
		Quantum:          8,
		MemBudget:        1 << 20,
		MemReserve:       1,
		MemCheckInterval: 2 * time.Millisecond,
		SoftMemBytes:     8 << 10,
		HardMemBytes:     48 << 10,
	})
	ts := httptest.NewServer(srv.Handler())
	if err := fault.Configure("mem.soft=error@0.2;mem.hard=error@0.05;broker.reserve=error@0.05", 7); err != nil {
		t.Fatal(err)
	}
	q := url.Values{"q": {chaosQuery}, "limit": {"80"}}
	target := ts.URL + "/query?" + q.Encode()
	var wg sync.WaitGroup
	statuses := map[int]int{}
	inBand := 0
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 8; r++ {
				resp, err := ts.Client().Get(target)
				if err != nil {
					t.Errorf("GET: %v", err)
					return
				}
				sawError := false
				sc := bufio.NewScanner(resp.Body)
				sc.Buffer(make([]byte, 1<<20), 1<<20)
				for sc.Scan() {
					var probe map[string]any
					if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
						if resp.StatusCode == http.StatusOK {
							t.Errorf("bad NDJSON line %q", sc.Bytes())
						}
						break
					}
					if probe["error"] != nil {
						sawError = true
					}
				}
				resp.Body.Close()
				mu.Lock()
				statuses[resp.StatusCode]++
				if sawError {
					inBand++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	fault.Reset()
	for code := range statuses {
		switch code {
		case http.StatusOK, http.StatusInternalServerError, http.StatusServiceUnavailable,
			http.StatusGatewayTimeout, http.StatusInsufficientStorage:
		default:
			t.Fatalf("unexpected status %d (statuses: %v)", code, statuses)
		}
	}
	if statuses[http.StatusInsufficientStorage]+inBand == 0 {
		t.Fatalf("no request ever died of its memory budget (statuses: %v)", statuses)
	}

	// The server survived: health green, the aborts visible in /statsz, and a
	// budget-free query streams end to end.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after memory storm: %d", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var statsz struct {
		MemBroker *serve.BrokerStats `json:"mem_broker"`
		Runtime   struct {
			HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
		} `json:"runtime"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&statsz); err != nil {
		t.Fatalf("statsz after memory storm: %v", err)
	}
	resp.Body.Close()
	if statsz.MemBroker == nil || statsz.MemBroker.BudgetAborts == 0 {
		t.Fatalf("statsz mem_broker = %+v, want budget_aborts > 0", statsz.MemBroker)
	}
	if statsz.Runtime.HeapAllocBytes == 0 {
		t.Fatal("statsz runtime stats missing")
	}
	clean, err := ts.Client().Get(target + "&softmem=0&hardmem=0")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(clean.Body)
	clean.Body.Close()
	if clean.StatusCode != http.StatusOK || !strings.Contains(string(body), `"done":true`) {
		t.Fatalf("clean query after memory storm: status=%d body tail %q", clean.StatusCode, tail(string(body)))
	}

	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("server Close: %v", err)
	}
	if entries, err := os.ReadDir(httpSpill); err != nil || len(entries) != 0 {
		t.Fatalf("HTTP spill parent not empty after drain: %v entries, err=%v", len(entries), err)
	}

	// When CI pins GOMEMLIMIT, the storm must not have blown through it: the
	// accounted budgets exist precisely to keep the process heap bounded.
	if lim := debug.SetMemoryLimit(-1); lim != math.MaxInt64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > uint64(lim) {
			t.Fatalf("HeapAlloc %d exceeds GOMEMLIMIT %d after memory storm", ms.HeapAlloc, lim)
		}
	}
}

// drainChaosStats drains rows like drainChaos, folding the execution's
// spill-escalation count into the shared tally before release.
func drainChaosStats(rows *omega.Rows, limit int, mu *sync.Mutex, escalations *int) (n int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("recovered panic: %v", r)
			rows.Abort(err)
		}
	}()
	record := func() {
		s := rows.Stats()
		if s.SpillEscalations > 0 {
			mu.Lock()
			*escalations += s.SpillEscalations
			mu.Unlock()
		}
	}
	for limit <= 0 || n < limit {
		_, ok, e := rows.Next()
		if e != nil {
			record()
			rows.Close()
			return n, e
		}
		if !ok {
			break
		}
		n++
	}
	record()
	rows.Close()
	return n, nil
}

// TestEnvFailpointChaos is the CI fault-injection job's entry point: the job
// sets OMEGA_FAILPOINTS/OMEGA_FAILPOINTS_SEED in the environment and runs only
// this test under -race, so the test exercises the production activation path
// (the fault package's init arming from env at process start) rather than
// programmatic Configure. It drives the spill-heavy corpus through pooled
// executions under whatever schedule the environment armed, requires every
// failure to be typed, and — after disarming — requires pooled output to be
// byte-identical to fresh and the spill parent to be empty. Skips when the
// environment is clean, so ordinary `go test ./...` runs are unaffected.
func TestEnvFailpointChaos(t *testing.T) {
	spec := os.Getenv("OMEGA_FAILPOINTS")
	if spec == "" {
		t.Skip("OMEGA_FAILPOINTS not set (this test backs the CI fault-injection job)")
	}
	if !fault.Enabled() {
		t.Fatalf("OMEGA_FAILPOINTS=%q is set but the registry was not armed at process start", spec)
	}
	t.Cleanup(fault.Reset)

	dir := t.TempDir()
	eng := chaosEngine(t, omega.Options{
		DistanceAware:  true,
		SpillThreshold: 8,
		SpillDir:       dir,
	})
	pool := omega.NewEvalPool(4)
	queries := chaosCorpus(t)
	const (
		limit  = 150
		rounds = 6
	)

	failures := 0
	for round := 0; round < rounds; round++ {
		for _, text := range queries {
			pq, err := eng.PrepareText(text)
			if err != nil {
				t.Fatal(err)
			}
			rows, err := pq.Exec(context.Background(), omega.ExecOptions{Pool: pool})
			if err != nil {
				failures++
				if !typedChaosError(err) {
					t.Fatalf("round %d %q: untyped Exec error %v", round, text, err)
				}
				continue
			}
			if _, err := drainChaos(rows, limit); err != nil {
				failures++
				if !typedChaosError(err) {
					t.Fatalf("round %d %q: untyped error %v", round, text, err)
				}
			}
		}
	}
	fired := map[string]int64{}
	mergeFired(fired)
	var fires int64
	for _, n := range fired {
		fires += n
	}
	if fires == 0 {
		t.Fatalf("env schedule %q never fired across %d rounds (stats: %v)", spec, rounds, fault.Stats())
	}

	// Disarmed: nothing the faults touched may survive. Pooled output must be
	// byte-identical to fresh for every query, and the executions above must
	// have released all their disk state.
	fault.Reset()
	for _, text := range queries {
		pq, err := eng.PrepareText(text)
		if err != nil {
			t.Fatal(err)
		}
		collect := func(eo omega.ExecOptions) []omega.Row {
			rows, err := pq.Exec(context.Background(), eo)
			if err != nil {
				t.Fatalf("clean run after env chaos: %q: %v", text, err)
			}
			got, err := rows.Collect(limit)
			rows.Close()
			if err != nil {
				t.Fatalf("clean run after env chaos: %q: %v", text, err)
			}
			return got
		}
		fresh := collect(omega.ExecOptions{})
		pooled := collect(omega.ExecOptions{Pool: pool})
		if len(fresh) != len(pooled) {
			t.Fatalf("%q: pooled %d rows, fresh %d after env chaos", text, len(pooled), len(fresh))
		}
		for i := range fresh {
			if fresh[i].Dist != pooled[i].Dist || fresh[i].Labels[0] != pooled[i].Labels[0] {
				t.Fatalf("%q row %d: pooled %v, fresh %v", text, i, pooled[i], fresh[i])
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("spill dir not empty after env chaos: %v", names)
	}
	t.Logf("env chaos: spec=%q failures=%d fired=%v", spec, failures, fired)
}

func tail(s string) string {
	if len(s) > 200 {
		return s[len(s)-200:]
	}
	return s
}
