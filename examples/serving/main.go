// Example serving: a minimal client of the omega-serve HTTP front-end,
// demonstrating the two serving-layer contracts a production caller relies
// on:
//
//  1. plan-cache amortisation — the first request for a query text pays
//     parse + automaton compilation; every repeat is Exec-only (watch the
//     plan-cache hit counter climb in /statsz while latency drops);
//  2. graceful overload handling — when the admission queue is full the
//     server answers 503 with a Retry-After hint instead of queueing without
//     bound, and a client that honours the hint with jittered exponential
//     backoff (capped attempts, so it never hammers forever) completes its
//     work.
//
// The example starts an in-process server on a loopback port, so it runs
// self-contained:
//
//	go run ./examples/serving
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"sync"
	"time"

	"omega"
	"omega/internal/l4all"
	"omega/internal/serve"
)

const queryText = "(?X) <- APPROX (Librarians, type-.job-.next, ?X)"

func main() {
	// A deliberately tiny server: one worker and no waiting queue, so the
	// overload path below triggers deterministically.
	g, ont := l4all.Generate(l4all.L1)
	eng := omega.NewEngine(g, ont).WithOptions(omega.Options{DistanceAware: true})
	srv := serve.New(serve.Config{
		Engine:     eng,
		Workers:    1,
		Queue:      -1, // no waiting queue: excess load is rejected, not parked
		RetryAfter: 50 * time.Millisecond,
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n\n", base)

	// 1. Plan-cache amortisation: the same query text, issued repeatedly.
	fmt.Println("plan-cache amortisation (same query, repeated):")
	for i := 0; i < 4; i++ {
		start := time.Now()
		rows := runQuery(base, queryText, 25)
		hits, misses := cacheCounters(base)
		fmt.Printf("  request %d: %2d rows in %6.2fms   plan cache: %d miss, %d hits\n",
			i+1, rows, float64(time.Since(start).Nanoseconds())/1e6, misses, hits)
	}

	// 2. Overload: five concurrent clients against one worker and no queue.
	// Rejected clients back off exponentially with jitter — Retry-After is
	// the floor of the first delay, each further rejection doubles it, and a
	// random ±25% spread keeps the herd from re-stampeding in lockstep. A
	// client that exhausts its attempt budget gives up instead of hammering
	// an overloaded server forever.
	fmt.Println("\noverload handling (5 clients, 1 worker, no queue):")
	var mu sync.Mutex
	retries := map[int]int{}
	gaveUp := 0
	var wg sync.WaitGroup
	for c := 0; c < 5; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			const maxAttempts = 10
			for attempt := 0; attempt < maxAttempts; attempt++ {
				// No row limit: each request streams the full answer set, so
				// concurrent clients genuinely contend for the single worker.
				status, retryAfter := tryQuery(base, queryText, 0)
				if status == http.StatusOK {
					return
				}
				if status != http.StatusServiceUnavailable {
					fmt.Printf("  client %d: unexpected status %d\n", c, status)
					return
				}
				mu.Lock()
				retries[c]++
				mu.Unlock()
				// Exponential backoff on the server's hint, jittered ±25%,
				// capped so a long Retry-After cannot compound into minutes.
				delay := retryAfter << attempt
				if max := 2 * time.Second; delay > max {
					delay = max
				}
				jitter := time.Duration(rng.Int63n(int64(delay)/2+1)) - delay/4
				time.Sleep(delay + jitter)
			}
			mu.Lock()
			gaveUp++
			mu.Unlock()
			fmt.Printf("  client %d: gave up after %d attempts\n", c, maxAttempts)
		}(c)
	}
	wg.Wait()
	total := 0
	mu.Lock()
	for _, n := range retries {
		total += n
	}
	mu.Unlock()
	fmt.Printf("  %d of 5 clients completed; %d request(s) were rejected with 503 + Retry-After and retried with backoff\n", 5-gaveUp, total)

	httpSrv.Close()
	if err := srv.Close(); err != nil {
		fatal(err)
	}
}

// runQuery streams one query to exhaustion and returns the row count.
func runQuery(base, text string, limit int) int {
	u := base + "/query?" + url.Values{"q": {text}, "limit": {strconv.Itoa(limit)}}.Encode()
	resp, err := http.Get(u)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("status %d", resp.StatusCode))
	}
	rows := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var probe map[string]any
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			fatal(err)
		}
		if probe["done"] == true || probe["error"] != nil {
			break
		}
		rows++
	}
	return rows
}

// tryQuery issues one query, returning the HTTP status and, for 503s, the
// parsed Retry-After hint.
func tryQuery(base, text string, limit int) (int, time.Duration) {
	vals := url.Values{"q": {text}}
	if limit > 0 {
		vals.Set("limit", strconv.Itoa(limit))
	}
	u := base + "/query?" + vals.Encode()
	resp, err := http.Get(u)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
		}
		return resp.StatusCode, 0
	}
	retryAfter := 100 * time.Millisecond
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			retryAfter = time.Duration(secs) * time.Second
			if retryAfter == 0 {
				retryAfter = 50 * time.Millisecond
			}
		}
	}
	return resp.StatusCode, retryAfter
}

// cacheCounters reads the plan-cache hit/miss counters from /statsz.
func cacheCounters(base string) (hits, misses int64) {
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		PlanCache struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"plan_cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		fatal(err)
	}
	return payload.PlanCache.Hits, payload.PlanCache.Misses
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "serving example: %v\n", err)
	os.Exit(1)
}
