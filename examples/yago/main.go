// YAGO walkthrough: the knowledge-graph workload of the paper's §4.2,
// including the motivating Examples 1–3 of the paper. Runs against the
// synthetic YAGO-shaped graph (scaled down by default).
//
//	go run ./examples/yago
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"omega"
)

func main() {
	start := time.Now()
	g, ont := omega.GenerateYAGO(0.25)
	fmt.Printf("YAGO-shaped graph: %d nodes, %d edges (generated in %v)\n\n",
		g.NumNodes(), g.NumEdges(), time.Since(start).Round(time.Millisecond))

	eng := omega.NewEngine(g, ont)

	// Paper Example 1: people who graduated from an institution located in
	// the UK — written with gradFrom in the wrong direction, so the exact
	// query returns nothing.
	const ex = "(?X) <- (UK, isLocatedIn-.gradFrom, ?X)"
	fmt.Println("Example 1 (exact):", ex)
	printSome(eng, ex, 5)

	// Paper Example 2: APPROX corrects gradFrom to gradFrom− at distance 1,
	// returning the intended graduates.
	fmt.Println("Example 2 (APPROX):")
	printSome(eng, "(?X) <- APPROX (UK, isLocatedIn-.gradFrom, ?X)", 5)

	// Paper Example 3: RELAX generalises gradFrom to
	// relationLocatedByObject, so happenedIn/participatedIn/locatedIn match.
	fmt.Println("Example 3 (RELAX):")
	printSome(eng, "(?X) <- RELAX (UK, isLocatedIn-.gradFrom, ?X)", 5)

	// Figure 9 queries: run the study set and report counts. Each query runs
	// under a deadline, the serving idiom for a latency budget: a query that
	// overruns is cut off with ErrDeadline and its state released by Close.
	fmt.Println("Figure 9 query set (top-20 per query, 2s deadline each):")
	for _, q := range omega.YAGOQueries() {
		pq, err := eng.PrepareText(q.Text)
		if err != nil {
			log.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		rows, err := pq.Exec(ctx, omega.ExecOptions{Limit: 20})
		if err != nil {
			cancel()
			log.Fatal(err)
		}
		got, err := rows.Collect(0)
		rows.Close()
		cancel()
		switch {
		case errors.Is(err, omega.ErrDeadline):
			fmt.Printf("  %-3s %3d answer(s), deadline exceeded   %s\n", q.ID, len(got), q.Text)
		case err != nil:
			log.Fatal(err)
		default:
			fmt.Printf("  %-3s %3d answer(s)   %s\n", q.ID, len(got), q.Text)
		}
	}
}

func printSome(eng *omega.Engine, q string, limit int) {
	rows, err := eng.QueryText(q)
	if err != nil {
		log.Fatal(err)
	}
	got, err := rows.Collect(limit)
	if err != nil {
		log.Fatal(err)
	}
	if len(got) == 0 {
		fmt.Println("  (no answers)")
	}
	for _, r := range got {
		fmt.Printf("  %v\n", r)
	}
	fmt.Println()
}
