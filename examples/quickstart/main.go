// Quickstart: build a small graph, pose an exact query, then see APPROX and
// RELAX recover answers the exact query misses.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"omega"
)

func main() {
	// A miniature knowledge graph about people and places.
	b := omega.NewGraphBuilder()
	for _, t := range [][3]string{
		{"Oxford", "isLocatedIn", "UK"},
		{"Birkbeck", "isLocatedIn", "UK"},
		{"Cambridge", "isLocatedIn", "UK"},
		{"alice", "gradFrom", "Oxford"},
		{"bob", "gradFrom", "Birkbeck"},
		{"carol", "gradFrom", "Cambridge"},
		{"dave", "worksAt", "Oxford"},
		{"SummerFest", "isLocatedIn", "UK"},
		{"SummerFest", "happenedIn", "Oxford"},
	} {
		if err := b.AddTriple(t[0], t[1], t[2]); err != nil {
			log.Fatal(err)
		}
	}
	g := b.Freeze()

	// A small ontology: gradFrom and happenedIn share a superproperty.
	ont := omega.NewOntology()
	ont.AddSubproperty("gradFrom", "relationLocatedByObject")
	ont.AddSubproperty("happenedIn", "relationLocatedByObject")
	ont.AddSubproperty("worksAt", "relationLocatedByObject")

	eng := omega.NewEngine(g, ont)

	// The user wants people who graduated from an institution in the UK but
	// writes the last step in the wrong direction (paper Example 1).
	const q = "(?X) <- (UK, isLocatedIn-.gradFrom, ?X)"
	show(eng, "EXACT  "+q, q)

	// APPROX repairs the mistake by substituting gradFrom with gradFrom−
	// at edit distance 1 (paper Example 2).
	show(eng, "APPROX "+q, "(?X) <- APPROX (UK, isLocatedIn-.gradFrom, ?X)")

	// RELAX generalises gradFrom to its superproperty, so happenedIn and
	// worksAt edges start to match at relaxation distance 1 (paper Example 3).
	show(eng, "RELAX  "+q, "(?X) <- RELAX (UK, isLocatedIn-.gradFrom, ?X)")

	// Serving shape: compile the query once, then execute it per request —
	// one mode sweep here, but the same PreparedQuery could serve any number
	// of goroutines concurrently. Exec takes a context for cancellation and
	// per-call ExecOptions; Close releases the run's state deterministically.
	fmt.Println("Prepared (one compile, three executions):")
	pq, err := eng.PrepareText(q)
	if err != nil {
		log.Fatal(err)
	}
	for _, mode := range []omega.Mode{omega.Exact, omega.Approx, omega.Relax} {
		rows, err := pq.Exec(context.Background(), omega.ExecOptions{
			Limit: 10,
			Mode:  omega.ModeOverride(mode),
		})
		if err != nil {
			log.Fatal(err)
		}
		got, err := rows.Collect(0)
		rows.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s %d answer(s)\n", mode, len(got))
	}
	automata, d := pq.CompileStats()
	fmt.Printf("  (%d automata compiled once, in %v)\n", automata, d.Round(time.Microsecond))
}

func show(eng *omega.Engine, title, q string) {
	rows, err := eng.QueryText(q)
	if err != nil {
		log.Fatal(err)
	}
	got, err := rows.Collect(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(title)
	if len(got) == 0 {
		fmt.Println("  (no answers)")
	}
	for _, r := range got {
		fmt.Printf("  %s\n", r)
	}
	fmt.Println()
}
