// Tuning walkthrough: the two §4.3 optimisations side by side.
//
// Distance-aware retrieval evaluates with a cost cap ψ = 0, φ, 2φ, …,
// restarting at each increment, so no tuple beyond the needed distance is
// ever processed. Alternation-by-disjunction decomposes a top-level R1|R2
// into sub-automata evaluated cheapest-first per distance phase.
//
//	go run ./examples/tuning
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"omega"
)

func main() {
	g, ont := omega.GenerateYAGO(0.25)
	fmt.Printf("YAGO-shaped graph: %d nodes, %d edges\n\n", g.NumNodes(), g.NumEdges())

	// The paper's YAGO Q2: deep path from a constant; APPROX generates many
	// intermediate results without the distance cap.
	q2 := "(?X) <- APPROX (Li_Peng, hasChild.gradFrom.gradFrom-.hasWonPrize, ?X)"
	fmt.Println("Q2 APPROX:", q2)
	compare(g, ont, q2,
		option{"baseline", omega.Options{}},
		option{"distance-aware", omega.Options{DistanceAware: true}},
	)

	// The paper's YAGO Q9: a top-level alternation; the disjunction strategy
	// orders the two branches by observed answer counts.
	q9 := "(?X) <- APPROX (UK, (livesIn-.hasCurrency)|(locatedIn-.gradFrom), ?X)"
	fmt.Println("Q9 APPROX:", q9)
	compare(g, ont, q9,
		option{"baseline", omega.Options{}},
		option{"distance-aware", omega.Options{DistanceAware: true}},
		option{"disjunction", omega.Options{Disjunction: true}},
	)

	// Per-execution knobs: the same prepared query served with different
	// budgets. Limit stops after n answers, MaxDist stops before the first
	// answer over the distance cap, MaxTuples bounds memory for one request.
	fmt.Println("Q2 APPROX, one PreparedQuery, per-request ExecOptions:")
	pq, err := omega.NewEngine(g, ont).WithOptions(omega.Options{DistanceAware: true}).PrepareText(q2)
	if err != nil {
		log.Fatal(err)
	}
	for _, eo := range []struct {
		name string
		opts omega.ExecOptions
	}{
		{"limit 10", omega.ExecOptions{Limit: 10}},
		{"max dist 1", omega.ExecOptions{MaxDist: 1}},
		{"tuple budget 2000", omega.ExecOptions{MaxTuples: 2000}},
	} {
		rows, err := pq.Exec(context.Background(), eo.opts)
		if err != nil {
			log.Fatal(err)
		}
		got, err := rows.Collect(0)
		rows.Close()
		switch {
		case errors.Is(err, omega.ErrTupleBudget):
			fmt.Printf("  %-18s %3d answers, then tuple budget exhausted\n", eo.name, len(got))
		case err != nil:
			log.Fatal(err)
		default:
			fmt.Printf("  %-18s %3d answers\n", eo.name, len(got))
		}
	}
}

type option struct {
	name string
	opts omega.Options
}

func compare(g *omega.Graph, ont *omega.Ontology, q string, options ...option) {
	for _, o := range options {
		eng := omega.NewEngine(g, ont).WithOptions(o.opts)
		start := time.Now()
		rows, err := eng.QueryText(q)
		if err != nil {
			log.Fatal(err)
		}
		got, err := rows.Collect(100)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		s := rows.Stats()
		fmt.Printf("  %-15s %3d answers in %9v   tuples=%d visited=%d phases=%d\n",
			o.name, len(got), elapsed.Round(time.Microsecond), s.TuplesAdded, s.VisitedSize, s.Phases)
	}
	fmt.Println()
}
