// L4All walkthrough: the lifelong-learning workload of the paper's §4.1.
// Generates the L1 data graph (143 timelines of work/education episodes),
// then runs three of the study queries in exact, APPROX and RELAX modes,
// showing how the flexible operators recover answers where exact matching
// returns nothing.
//
//	go run ./examples/l4all
package main

import (
	"fmt"
	"log"
	"time"

	"omega"
)

func main() {
	start := time.Now()
	g, ont, err := omega.GenerateL4All("L1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("L1 data graph: %d nodes, %d edges (generated in %v)\n\n",
		g.NumNodes(), g.NumEdges(), time.Since(start).Round(time.Millisecond))

	eng := omega.NewEngine(g, ont)

	// Q10: job events classified as Librarians. RELAX climbs the Occupation
	// hierarchy (Librarians → Information Professionals), matching sibling
	// professions at distance 1.
	demo(eng, "Q10", "(?X) <- (Librarians, type-, ?X)")

	// Q12: qualifications at the BTEC Introductory Diploma level followed by
	// a prerequisite step. Exact yields nothing (the diploma closes a
	// timeline); RELAX finds siblings under Level 1; APPROX edits the path.
	demo(eng, "Q12", "(?X) <- (BTEC Introductory Diploma, level-.qualif-.prereq, ?X)")

	// Q8: a deliberately broken query (type instead of type−). Only APPROX
	// can recover, at edit distance 2.
	demo(eng, "Q8", "(?X) <- (Mathematical and Computer Sciences, type.prereq+, ?X)")
}

func demo(eng *omega.Engine, id, q string) {
	fmt.Printf("— %s: %s\n", id, q)
	for _, mode := range []omega.Mode{omega.Exact, omega.Approx, omega.Relax} {
		start := time.Now()
		rows, err := eng.QueryTextMode(q, mode)
		if err != nil {
			log.Fatal(err)
		}
		got, err := rows.Collect(100)
		if err != nil {
			log.Fatal(err)
		}
		byDist := map[int]int{}
		for _, r := range got {
			byDist[r.Dist]++
		}
		fmt.Printf("  %-6v %3d answers in %8v  by distance: %v\n",
			mode, len(got), time.Since(start).Round(time.Microsecond), byDist)
		if len(got) > 0 {
			fmt.Printf("         first: %v\n", got[0])
		}
	}
	fmt.Println()
}
